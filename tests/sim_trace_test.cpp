// Tests for sim/trace: window statistics, interpolation, CSV export.

#include "sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.h"

namespace vmtherm::sim {
namespace {

TemperatureTrace make_ramp_trace() {
  // t = 0, 10, ..., 100; sensed = t / 10 (0..10), true = sensed + 0.5.
  TemperatureTrace trace(10.0);
  for (int i = 0; i <= 10; ++i) {
    TracePoint p;
    p.time_s = 10.0 * i;
    p.cpu_temp_sensed_c = static_cast<double>(i);
    p.cpu_temp_true_c = static_cast<double>(i) + 0.5;
    trace.push_back(p);
  }
  return trace;
}

TEST(TraceTest, EmptyProperties) {
  TemperatureTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_DOUBLE_EQ(trace.duration_s(), 0.0);
}

TEST(TraceTest, InvalidIntervalThrows) {
  EXPECT_THROW(TemperatureTrace(0.0), ConfigError);
  EXPECT_THROW(TemperatureTrace(-1.0), ConfigError);
}

TEST(TraceTest, SizeAndDuration) {
  const auto trace = make_ramp_trace();
  EXPECT_EQ(trace.size(), 11u);
  EXPECT_DOUBLE_EQ(trace.duration_s(), 100.0);
  EXPECT_DOUBLE_EQ(trace.interval_s(), 10.0);
}

TEST(TraceTest, TempVectors) {
  const auto trace = make_ramp_trace();
  const auto sensed = trace.sensed_temps();
  const auto truth = trace.true_temps();
  ASSERT_EQ(sensed.size(), 11u);
  EXPECT_DOUBLE_EQ(sensed[3], 3.0);
  EXPECT_DOUBLE_EQ(truth[3], 3.5);
}

TEST(TraceTest, MeanBetweenInclusiveWindow) {
  const auto trace = make_ramp_trace();
  // Points at 50..100 -> sensed 5..10, mean 7.5.
  EXPECT_DOUBLE_EQ(trace.mean_sensed_between(50.0, 100.0), 7.5);
  EXPECT_DOUBLE_EQ(trace.mean_true_between(50.0, 100.0), 8.0);
}

TEST(TraceTest, MeanBetweenSinglePoint) {
  const auto trace = make_ramp_trace();
  EXPECT_DOUBLE_EQ(trace.mean_sensed_between(30.0, 30.0), 3.0);
}

TEST(TraceTest, MeanBetweenEmptyWindowThrows) {
  const auto trace = make_ramp_trace();
  EXPECT_THROW((void)trace.mean_sensed_between(101.0, 200.0), DataError);
  EXPECT_THROW((void)trace.mean_sensed_between(33.0, 36.0), DataError);
}

TEST(TraceTest, SensedAtExactPoints) {
  const auto trace = make_ramp_trace();
  EXPECT_DOUBLE_EQ(trace.sensed_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(trace.sensed_at(50.0), 5.0);
  EXPECT_DOUBLE_EQ(trace.sensed_at(100.0), 10.0);
}

TEST(TraceTest, SensedAtInterpolates) {
  const auto trace = make_ramp_trace();
  EXPECT_NEAR(trace.sensed_at(25.0), 2.5, 1e-12);
  EXPECT_NEAR(trace.sensed_at(99.0), 9.9, 1e-12);
}

TEST(TraceTest, SensedAtClampsToEnds) {
  const auto trace = make_ramp_trace();
  EXPECT_DOUBLE_EQ(trace.sensed_at(-50.0), 0.0);
  EXPECT_DOUBLE_EQ(trace.sensed_at(1e9), 10.0);
}

TEST(TraceTest, SensedAtEmptyThrows) {
  TemperatureTrace trace;
  EXPECT_THROW((void)trace.sensed_at(0.0), DataError);
}

TEST(TraceTest, CsvExportParsesBack) {
  const auto trace = make_ramp_trace();
  std::ostringstream oss;
  trace.write_csv(oss);
  std::istringstream iss(oss.str());
  const CsvDocument doc = read_csv(iss);
  EXPECT_EQ(doc.rows.size(), trace.size());
  EXPECT_EQ(doc.column("time_s"), 0u);
  EXPECT_EQ(doc.rows[5][doc.column("cpu_temp_sensed_c")], "5.0000");
}

}  // namespace
}  // namespace vmtherm::sim
