// Tests for core/uncertainty: split-conformal prediction intervals.

#include "core/uncertainty.h"

#include <gtest/gtest.h>

#include "core/evaluator.h"

namespace vmtherm::core {
namespace {

struct Fixture {
  std::vector<Record> train;
  std::vector<Record> calibration;
  std::vector<Record> test;
  StableTemperaturePredictor predictor;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    sim::ScenarioRanges ranges;
    ranges.duration_s = 1200.0;
    ranges.sample_interval_s = 10.0;
    StableTrainOptions options;
    ml::SvrParams params;
    params.kernel.gamma = 1.0 / 32;
    params.c = 512.0;
    params.epsilon = 0.05;
    options.fixed_params = params;
    auto train = generate_corpus(ranges, 150, 91);
    auto predictor = StableTemperaturePredictor::train(train, options);
    return Fixture{std::move(train), generate_corpus(ranges, 60, 92),
                   generate_corpus(ranges, 80, 93), std::move(predictor)};
  }();
  return f;
}

TEST(ConformalTest, EmptyCalibrationThrows) {
  EXPECT_THROW(ConformalPredictor(fixture().predictor, {}), DataError);
}

TEST(ConformalTest, InvalidAlphaThrows) {
  const ConformalPredictor conformal(fixture().predictor,
                                     fixture().calibration);
  EXPECT_THROW((void)conformal.quantile_c(0.0), ConfigError);
  EXPECT_THROW((void)conformal.quantile_c(1.0), ConfigError);
  EXPECT_THROW((void)conformal.interval(fixture().test[0], -0.5), ConfigError);
}

TEST(ConformalTest, IntervalCenteredOnPrediction) {
  const ConformalPredictor conformal(fixture().predictor,
                                     fixture().calibration);
  const auto interval = conformal.interval(fixture().test[0], 0.1);
  EXPECT_DOUBLE_EQ(interval.prediction_c,
                   fixture().predictor.predict(fixture().test[0]));
  EXPECT_NEAR(interval.prediction_c - interval.lower_c,
              interval.upper_c - interval.prediction_c, 1e-12);
  EXPECT_GT(interval.half_width_c(), 0.0);
}

TEST(ConformalTest, SmallerAlphaWiderInterval) {
  const ConformalPredictor conformal(fixture().predictor,
                                     fixture().calibration);
  EXPECT_GE(conformal.quantile_c(0.05), conformal.quantile_c(0.2));
  EXPECT_GE(conformal.quantile_c(0.2), conformal.quantile_c(0.5));
}

TEST(ConformalTest, CoverageOnHeldOutData) {
  // The split-conformal guarantee: coverage >= 1 - alpha (in expectation
  // over calibration/test draws; we allow a finite-sample slack).
  const ConformalPredictor conformal(fixture().predictor,
                                     fixture().calibration);
  for (double alpha : {0.1, 0.2}) {
    std::size_t covered = 0;
    for (const auto& r : fixture().test) {
      if (conformal.interval(r, alpha).contains(r.stable_temp_c)) ++covered;
    }
    const double coverage =
        static_cast<double>(covered) / static_cast<double>(fixture().test.size());
    EXPECT_GE(coverage, 1.0 - alpha - 0.08) << "alpha=" << alpha;
  }
}

TEST(ConformalTest, IntervalsAreUseful) {
  // Not vacuous: the 90% interval should be much narrower than the label
  // spread (tens of degrees).
  const ConformalPredictor conformal(fixture().predictor,
                                     fixture().calibration);
  EXPECT_LT(conformal.quantile_c(0.1), 8.0);
}

TEST(ConformalTest, CalibrationSizeReported) {
  const ConformalPredictor conformal(fixture().predictor,
                                     fixture().calibration);
  EXPECT_EQ(conformal.calibration_size(), fixture().calibration.size());
}

TEST(ConformalTest, KnownResidualQuantile) {
  // Hand-check the rank arithmetic with a tiny synthetic calibration whose
  // residuals are 1..10: alpha=0.2, n=10 -> rank ceil(11*0.8)=9 -> 9.0.
  // Build records whose labels are prediction + i.
  const auto& p = fixture().predictor;
  std::vector<Record> calibration;
  for (int i = 1; i <= 10; ++i) {
    Record r = fixture().calibration[0];
    r.stable_temp_c = p.predict(r) + static_cast<double>(i);
    calibration.push_back(r);
  }
  const ConformalPredictor conformal(p, calibration);
  EXPECT_DOUBLE_EQ(conformal.quantile_c(0.2), 9.0);
  // alpha=0.5 -> rank ceil(11*0.5)=6 -> residual 6.
  EXPECT_DOUBLE_EQ(conformal.quantile_c(0.5), 6.0);
  // Very small alpha clamps to the max residual.
  EXPECT_DOUBLE_EQ(conformal.quantile_c(0.01), 10.0);
}

}  // namespace
}  // namespace vmtherm::core
