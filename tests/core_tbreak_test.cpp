// Tests for core/tbreak: settling analysis and the data-driven t_break
// recommendation (the paper's "600 s deduced from experiments").

#include "core/tbreak.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vmtherm::core {
namespace {

sim::TemperatureTrace synthetic(double duration_s, double interval_s,
                                double (*f)(double)) {
  sim::TemperatureTrace trace(interval_s);
  for (double t = 0.0; t <= duration_s + 1e-9; t += interval_s) {
    sim::TracePoint p;
    p.time_s = t;
    p.cpu_temp_sensed_c = f(t);
    trace.push_back(p);
  }
  return trace;
}

double const_50(double) { return 50.0; }
double ramp_then_flat(double t) { return t < 400.0 ? 30.0 + t / 20.0 : 50.0; }
double never_settles(double t) { return 30.0 + t / 50.0; }

TEST(AnalyzeSettlingTest, ConstantTraceSettlesImmediately) {
  const auto analysis = analyze_settling(synthetic(1000.0, 10.0, const_50));
  EXPECT_TRUE(analysis.settled);
  EXPECT_DOUBLE_EQ(analysis.settling_time_s, 0.0);
  EXPECT_NEAR(analysis.final_value_c, 50.0, 1e-9);
}

TEST(AnalyzeSettlingTest, RampSettlesWhenEnteringBand) {
  // Enters the +-1 C band of 50 at t=380 (30 + 380/20 = 49).
  const auto analysis =
      analyze_settling(synthetic(1200.0, 10.0, ramp_then_flat), 1.0);
  EXPECT_TRUE(analysis.settled);
  EXPECT_NEAR(analysis.settling_time_s, 380.0, 15.0);
}

TEST(AnalyzeSettlingTest, WiderBandSettlesEarlier) {
  const auto narrow =
      analyze_settling(synthetic(1200.0, 10.0, ramp_then_flat), 0.5);
  const auto wide =
      analyze_settling(synthetic(1200.0, 10.0, ramp_then_flat), 5.0);
  EXPECT_LT(wide.settling_time_s, narrow.settling_time_s);
}

TEST(AnalyzeSettlingTest, UnsettledTraceFlagged) {
  const auto analysis =
      analyze_settling(synthetic(1000.0, 10.0, never_settles), 0.5);
  EXPECT_FALSE(analysis.settled);
  EXPECT_DOUBLE_EQ(analysis.settling_time_s, 1000.0);
}

TEST(AnalyzeSettlingTest, TooShortTraceThrows) {
  sim::TemperatureTrace trace(1.0);
  for (int i = 0; i < 5; ++i) {
    sim::TracePoint p;
    p.time_s = i;
    trace.push_back(p);
  }
  EXPECT_THROW((void)analyze_settling(trace), DataError);
}

TEST(AnalyzeSettlingTest, InvalidBandThrows) {
  const auto trace = synthetic(1000.0, 10.0, const_50);
  EXPECT_THROW((void)analyze_settling(trace, 0.0), ConfigError);
  EXPECT_THROW((void)analyze_settling(trace, -1.0), ConfigError);
}

TEST(StudyTbreakTest, RecommendsSensibleTbreakForTestbed) {
  // The headline reproduction: on experiments like the paper's (mixed VM
  // counts, 4 fans), the 90th-percentile settling time should be in the
  // few-hundred-seconds range that motivates the paper's 600 s choice.
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1800.0;
  ranges.sample_interval_s = 10.0;
  ranges.min_fans = 4;
  ranges.max_fans = 4;
  ranges.dynamic_env_probability = 0.0;  // settling is about the machine,
                                         // not a moving room temperature
  sim::ScenarioSampler sampler(ranges, 13);
  // +-2 C stability band: reasonable at the 40-85 C operating range.
  const auto study = study_t_break(sampler.sample(12), 2.0, 0.9);

  EXPECT_EQ(study.settling_times_s.size(), 12u);
  EXPECT_GT(study.recommended_t_break_s, 200.0);
  EXPECT_LT(study.recommended_t_break_s, 900.0);
}

TEST(StudyTbreakTest, FewerFansSettleSlower) {
  sim::ScenarioRanges base;
  base.duration_s = 2400.0;
  base.sample_interval_s = 10.0;
  base.dynamic_env_probability = 0.0;

  auto study_with_fans = [&](int fans) {
    sim::ScenarioRanges ranges = base;
    ranges.min_fans = fans;
    ranges.max_fans = fans;
    sim::ScenarioSampler sampler(ranges, 17);
    return study_t_break(sampler.sample(8), 2.0, 0.5);
  };
  // Fewer fans -> larger sink-to-ambient resistance -> slower time
  // constant -> later settling (median).
  EXPECT_GT(study_with_fans(1).recommended_t_break_s,
            study_with_fans(6).recommended_t_break_s);
}

TEST(StudyTbreakTest, SettlingTimesSorted) {
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1500.0;
  ranges.sample_interval_s = 10.0;
  sim::ScenarioSampler sampler(ranges, 19);
  const auto study = study_t_break(sampler.sample(6), 1.0, 0.9);
  for (std::size_t i = 1; i < study.settling_times_s.size(); ++i) {
    EXPECT_LE(study.settling_times_s[i - 1], study.settling_times_s[i]);
  }
}

TEST(StudyTbreakTest, InvalidInputsThrow) {
  EXPECT_THROW((void)study_t_break({}, 1.0, 0.9), ConfigError);
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1200.0;
  sim::ScenarioSampler sampler(ranges, 3);
  const auto configs = sampler.sample(2);
  EXPECT_THROW((void)study_t_break(configs, 1.0, 1.5), ConfigError);
}

}  // namespace
}  // namespace vmtherm::core
