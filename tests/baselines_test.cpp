// Tests for the baseline predictors: task-temperature profiles [4],
// RC-circuit model [5], and the naive dynamic comparators.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/naive_dynamic.h"
#include "baselines/rc_predictor.h"
#include "baselines/task_temperature.h"
#include "core/evaluator.h"

namespace vmtherm::baselines {
namespace {

const std::vector<core::Record>& corpus() {
  static const std::vector<core::Record> records = [] {
    sim::ScenarioRanges ranges;
    ranges.duration_s = 1200.0;
    ranges.sample_interval_s = 10.0;
    return core::generate_corpus(ranges, 80, 55);
  }();
  return records;
}

TEST(TaskTemperatureTest, EmptyCorpusThrows) {
  EXPECT_THROW((void)TaskTemperatureBaseline::fit({}), DataError);
}

TEST(TaskTemperatureTest, FitsAndPredictsPlausibly) {
  const auto model = TaskTemperatureBaseline::fit(corpus());
  for (const auto& r : corpus()) {
    const double pred = model.predict(r);
    EXPECT_GT(pred, 0.0);
    EXPECT_LT(pred, 130.0);
  }
}

TEST(TaskTemperatureTest, CpuBurnContributesMoreThanIdle) {
  const auto model = TaskTemperatureBaseline::fit(corpus());
  const auto contrib = model.contributions();
  ASSERT_EQ(contrib.size(), sim::kTaskTypeCount);
  const double burn =
      contrib[static_cast<std::size_t>(sim::TaskType::kCpuBurn)];
  const double idle = contrib[static_cast<std::size_t>(sim::TaskType::kIdle)];
  EXPECT_GT(burn, idle);
}

TEST(TaskTemperatureTest, BaseTemperatureIsWarmish) {
  const auto model = TaskTemperatureBaseline::fit(corpus());
  // An empty server still shows ambient + idle heat: somewhere sane.
  EXPECT_GT(model.base_temperature(), 10.0);
  EXPECT_LT(model.base_temperature(), 60.0);
}

TEST(TaskTemperatureTest, BlindToFansAndEnvironment) {
  // The defining limitation: two records differing only in fans/env get the
  // same prediction.
  const auto model = TaskTemperatureBaseline::fit(corpus());
  core::Record r = corpus().front();
  core::Record hot_room = r;
  hot_room.env_temp_c = r.env_temp_c + 10.0;
  hot_room.fan_count = 1.0;
  EXPECT_DOUBLE_EQ(model.predict(r), model.predict(hot_room));
}

TEST(RcBaselineTest, EmptyCorpusThrows) {
  EXPECT_THROW((void)RcBaseline::fit({}), DataError);
}

TEST(RcBaselineTest, FitsPlausibleParameters) {
  const auto model = RcBaseline::fit(corpus());
  EXPECT_GT(model.homogeneous_utilization(), 0.0);
  EXPECT_LE(model.homogeneous_utilization(), 1.0);
}

TEST(RcBaselineTest, PredictionsTrackEnvironment) {
  const auto model = RcBaseline::fit(corpus());
  core::Record r = corpus().front();
  core::Record hot_room = r;
  hot_room.env_temp_c = r.env_temp_c + 10.0;
  // RC physics: ambient shifts prediction 1:1.
  EXPECT_NEAR(model.predict(hot_room) - model.predict(r), 10.0, 1e-9);
}

TEST(RcBaselineTest, MoreFansPredictCooler) {
  const auto model = RcBaseline::fit(corpus());
  core::Record r = corpus().front();
  r.vm.vm_count = 6.0;
  core::Record many_fans = r;
  r.fan_count = 1.0;
  many_fans.fan_count = 6.0;
  EXPECT_GT(model.predict(r), model.predict(many_fans));
}

TEST(RcBaselineTest, MoreVmsPredictHotterUntilSaturation) {
  const auto model = RcBaseline::fit(corpus());
  core::Record r = corpus().front();
  r.fan_count = 4.0;
  core::Record few = r;
  few.vm.vm_count = 1.0;
  core::Record many = r;
  many.vm.vm_count = 8.0;
  EXPECT_GE(model.predict(many), model.predict(few));
}

TEST(RcBaselineTest, DynamicValueInterpolatesExponentially) {
  const auto model = RcBaseline::fit(corpus());
  const core::Record r = corpus().front();
  const double psi = model.predict(r);
  const double phi0 = psi - 20.0;
  EXPECT_NEAR(model.dynamic_value(r, phi0, 0.0), phi0, 1e-9);
  const double tau = 250.0;
  const double at_tau = model.dynamic_value(r, phi0, tau);
  EXPECT_NEAR(at_tau, psi - 20.0 * std::exp(-1.0), 1e-9);
  EXPECT_NEAR(model.dynamic_value(r, phi0, 1e7), psi, 1e-6);
}

TEST(LastValueTest, ThrowsBeforeObservation) {
  LastValuePredictor p;
  EXPECT_THROW((void)p.predict_ahead(60.0), DataError);
}

TEST(LastValueTest, ReturnsLatestObservation) {
  LastValuePredictor p;
  p.observe(0.0, 40.0);
  p.observe(10.0, 45.0);
  EXPECT_DOUBLE_EQ(p.predict_ahead(60.0), 45.0);
}

TEST(EmaTest, InvalidAlphaRejected) {
  EXPECT_THROW(EmaPredictor(0.0), ConfigError);
  EXPECT_THROW(EmaPredictor(1.5), ConfigError);
}

TEST(EmaTest, ConvergesToConstantInput) {
  EmaPredictor p(0.3);
  for (int i = 0; i < 100; ++i) p.observe(i, 50.0);
  EXPECT_NEAR(p.predict_ahead(60.0), 50.0, 1e-9);
}

TEST(EmaTest, SmoothsSteps) {
  EmaPredictor p(0.5);
  p.observe(0.0, 0.0);
  p.observe(1.0, 10.0);
  EXPECT_DOUBLE_EQ(p.predict_ahead(1.0), 5.0);
}

TEST(TrendTest, ExtrapolatesLinearly) {
  TrendPredictor p;
  EXPECT_THROW((void)p.predict_ahead(10.0), DataError);
  p.observe(0.0, 10.0);
  EXPECT_DOUBLE_EQ(p.predict_ahead(5.0), 10.0);  // single point: flat
  p.observe(10.0, 20.0);                          // slope 1/s
  EXPECT_DOUBLE_EQ(p.predict_ahead(5.0), 25.0);
}

TEST(BaselineComparisonTest, SvrBeatsTaskProfilesOutOfSample) {
  // The paper's core motivation: VM-level features beat task-level tables.
  sim::ScenarioRanges ranges;
  ranges.duration_s = 1200.0;
  ranges.sample_interval_s = 10.0;
  const auto test_records = core::generate_corpus(ranges, 25, 77);

  core::StableTrainOptions options;
  ml::SvrParams params;
  params.kernel.gamma = 1.0 / 16;
  params.c = 256.0;
  params.epsilon = 0.05;
  options.fixed_params = params;
  const auto svr = core::StableTemperaturePredictor::train(corpus(), options);
  const auto task_model = TaskTemperatureBaseline::fit(corpus());

  double se_svr = 0.0;
  double se_task = 0.0;
  for (const auto& r : test_records) {
    se_svr += std::pow(svr.predict(r) - r.stable_temp_c, 2);
    se_task += std::pow(task_model.predict(r) - r.stable_temp_c, 2);
  }
  EXPECT_LT(se_svr, se_task);
}

}  // namespace
}  // namespace vmtherm::baselines
